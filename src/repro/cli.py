"""Command-line interface.

Reproduce any of the paper's tables and figures from a shell::

    python -m repro table1 -n 60000
    python -m repro fig7
    python -m repro map --figure 6
    python -m repro validate --oversample 16
    python -m repro list         # show the stage registry
    python -m repro all          # every table and figure

Every subcommand below is generated from the **stage registry**
(:mod:`repro.session`): each analysis module registers its stage
(name, CLI options, artifact, renderer), and this module only iterates
the registrations — ``repro all`` ordering, ``repro list``, and the
per-stage options all fall out of them.

Counts are printed both raw and rescaled to the paper's 5,364,949-
transceiver universe; every command prints the paper's number alongside.

Runtime knobs (see docs/runtime.md): ``--workers`` shards the spatial
joins across processes (or set ``REPRO_WORKERS``), ``--no-cache``
disables result memoization, ``--cache-dir`` adds an on-disk cache tier
that survives runs, and ``--stats`` prints per-stage wall times,
per-artifact session hit/miss counts, and index/cache counters after
the command.

Observability (see docs/observability.md): ``--trace FILE`` records a
hierarchical span tree — one span per stage, artifact build, join, and
worker chunk — as Chrome ``trace_event`` JSON for Perfetto;
``--log-json FILE`` streams the same spans as JSON lines;
``--metrics FILE`` writes a Prometheus text exposition of the perf
counters; ``--profile FILE`` runs every stage under cProfile;
``--mem`` samples RSS/heap per artifact build.  ``repro trace
[STAGE]`` runs a stage (default: everything) traced and prints the
span tree.

Provenance (see docs/observability.md): with ``--ledger-dir DIR`` (or
``REPRO_LEDGER_DIR``) every run appends a manifest — git SHA, version,
config, per-stage timings/counters, per-artifact fingerprints, output
checksums — to an append-only run ledger.  ``repro history [STAGE]``
shows the trend across runs, ``repro compare RUN_A RUN_B`` diffs two
runs (perf deltas + output drift), and ``repro gate`` fails when the
latest run regressed past a threshold against the median of the last N
baseline runs.  ``repro --version`` prints the package version and git
SHA that every manifest embeds.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import obs, runtime
from .core import report
from .data import SyntheticUS, UniverseConfig
from .data.universe import SCALE_PRESETS, scale_config
from .session import (
    AnalysisSession,
    StageOption,
    get_stage,
    iter_global_options,
    iter_stages,
    register_global_option,
    register_stage,
    set_artifact_observer,
    stages_in_all,
)

__all__ = ["main", "build_parser"]

#: Parse-time defaults for the universe flags.  ``--scale`` presets
#: yield to any flag the user moved off its default, so
#: ``--scale paper -n 1000000`` is a million-point paper-raster run.
_DEFAULT_TRANSCEIVERS = 60_000
_DEFAULT_SEED = 20_190_722
_DEFAULT_WHP_RES = 0.1

register_global_option(StageOption(
    "--scale", type=str, default=None,
    choices=tuple(SCALE_PRESETS),
    help="named universe scale (tiny/seed/paper); explicit -n / --seed "
         "/ --whp-res flags override the preset's fields"))


class _VersionAction(argparse.Action):
    """``repro --version``: package version + git SHA, then exit.

    The SHA lookup shells out to git, so it runs only when the flag is
    actually used — never on the normal parse path.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show version and git SHA, then exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        sys.stdout.write(obs.version_string() + "\n")
        parser.exit()


def _run_map(session: AnalysisSession, args: argparse.Namespace) -> str:
    """ASCII-map stage: full-control runner over :mod:`repro.viz`."""
    from .viz import figures
    figure = getattr(args, "figure", 6)
    width = getattr(args, "width", 100)
    fig_fn = {2: figures.figure2, 3: figures.figure3,
              4: figures.figure4, 6: figures.figure6}[figure]
    return fig_fn(session.universe, width=width).ascii_art


register_stage("map", help="ASCII map of a figure",
               paper="Figures 2-6", run=_run_map, domain="figures",
               options=(StageOption("--figure", type=int, default=6,
                                    choices=(2, 3, 4, 6),
                                    help="figure number"),
                        StageOption("--width", type=int, default=100)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Five Alarms' (IMC 2020) tables/figures.")
    parser.add_argument("--version", action=_VersionAction)
    parser.add_argument("-n", "--transceivers", type=int,
                        default=_DEFAULT_TRANSCEIVERS,
                        help="synthetic universe size (default 60000)")
    parser.add_argument("--seed", type=int, default=_DEFAULT_SEED)
    parser.add_argument("--whp-res", type=float,
                        default=_DEFAULT_WHP_RES,
                        help="WHP grid resolution in degrees")
    for opt in iter_global_options():
        kwargs = {"type": opt.type, "default": opt.default}
        if opt.help:
            kwargs["help"] = opt.help
        if opt.choices is not None:
            kwargs["choices"] = opt.choices
        if opt.nargs is not None:
            kwargs["nargs"] = opt.nargs
        parser.add_argument(opt.flag, **kwargs)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for spatial joins "
                             "(default: $REPRO_WORKERS or 1 = serial)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="points per parallel work unit")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the spatial-join result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: memory-only; $REPRO_CACHE_DIR)")
    parser.add_argument("--stats", action="store_true",
                        help="print runtime perf counters after the run")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON span tree "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--log-json", metavar="FILE", default=None,
                        help="stream spans and events as JSON lines")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a Prometheus text exposition of the "
                             "perf counters after the run")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="profile every stage under cProfile; dump "
                             "aggregated pstats to FILE")
    parser.add_argument("--mem", action="store_true",
                        help="sample RSS / Python-heap peak per "
                             "artifact build (adds span attributes)")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="append a run manifest (provenance, "
                             "timings, output checksums) to the ledger "
                             "in DIR ($REPRO_LEDGER_DIR; off by "
                             "default)")
    sub = parser.add_subparsers(dest="command", required=True)

    for stage in iter_stages():
        stage_parser = sub.add_parser(stage.name, help=stage.help)
        for opt in stage.options:
            kwargs: dict = {"type": opt.type, "default": opt.default}
            if opt.help:
                kwargs["help"] = opt.help
            if opt.choices is not None:
                kwargs["choices"] = opt.choices
            if opt.nargs is not None:
                kwargs["nargs"] = opt.nargs
            stage_parser.add_argument(opt.flag, **kwargs)

    sub.add_parser("list", help="show the stage registry")
    sub.add_parser("all", help="every table and figure")
    trace_parser = sub.add_parser(
        "trace", help="run a stage traced and print the span tree")
    trace_parser.add_argument(
        "stage", nargs="?", default="all",
        choices=tuple(s.name for s in iter_stages()) + ("all",),
        help="stage to trace (default: all)")
    trace_parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the Chrome trace_event JSON to FILE")
    trace_parser.add_argument(
        "--min-ms", type=float, default=0.1,
        help="fold spans shorter than this (default 0.1ms)")
    trace_parser.add_argument(
        "--events", action="store_true",
        help="show instant events (cache/pool) in the tree")

    history_parser = sub.add_parser(
        "history", help="show the run-ledger timing trend")
    history_parser.add_argument(
        "stage", nargs="?", default=None,
        help="track one stage's timer instead of the run total")
    history_parser.add_argument(
        "--limit", type=int, default=20,
        help="show at most this many runs (default 20)")
    history_parser.add_argument(
        "--bench", metavar="FILE", action="append", default=[],
        help="also ingest a BENCH_runtime.json "
             "(schema bench-runtime/1 or /2; repeatable)")

    compare_parser = sub.add_parser(
        "compare", help="diff two ledger runs (perf + output drift)")
    compare_parser.add_argument(
        "run_a", help="run-id prefix or index (-2 = previous run)")
    compare_parser.add_argument(
        "run_b", nargs="?", default="-1",
        help="second run (default: -1, the latest)")
    compare_parser.add_argument(
        "--min-seconds", type=float, default=0.0,
        help="hide timers below this on both sides")

    gate_parser = sub.add_parser(
        "gate", help="fail when the latest run regressed vs the "
                     "baseline median")
    gate_parser.add_argument(
        "stage", nargs="?", default=None,
        help="gate only this stage's timers (default: all)")
    gate_parser.add_argument(
        "--baseline", type=int, default=5,
        help="baseline size: median of the last N prior runs "
             "(default 5)")
    gate_parser.add_argument(
        "--threshold", type=float, default=1.3,
        help="regression ratio vs the baseline median (default 1.3)")
    gate_parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="noise floor: skip timers under this on both sides")
    gate_parser.add_argument(
        "--fail-on-drift", action="store_true",
        help="also exit nonzero when output checksums drifted")
    return parser


def _universe(args: argparse.Namespace) -> SyntheticUS:
    scale = getattr(args, "scale", None)
    if scale is not None:
        preset = scale_config(scale)
        if args.transceivers == _DEFAULT_TRANSCEIVERS:
            args.transceivers = preset.n_transceivers
        if args.seed == _DEFAULT_SEED:
            args.seed = preset.seed
        if args.whp_res == _DEFAULT_WHP_RES:
            args.whp_res = preset.whp_resolution_deg
        # args now carries the resolved values, so the ledger manifest
        # records the universe that actually ran.
    return SyntheticUS(UniverseConfig(
        n_transceivers=args.transceivers,
        seed=args.seed,
        whp_resolution_deg=args.whp_res,
    ))


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply CLI runtime flags to the global execution-layer config."""
    from pathlib import Path

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.no_cache:
        overrides["cache_enabled"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = Path(args.cache_dir)
    if overrides:
        runtime.configure(**overrides)
        runtime.set_cache(None)   # rebuild the cache from the new config


def _runtime_config_dict() -> dict:
    cfg = runtime.get_config()
    return {
        "workers": cfg.workers,
        "chunk_size": cfg.chunk_size,
        "cache_enabled": cfg.cache_enabled,
        "cache_dir": str(cfg.cache_dir) if cfg.cache_dir else None,
    }


def _configure_ledger(args: argparse.Namespace) -> dict | None:
    """Arm run-manifest recording when a ledger directory is set.

    Returns ``None`` (and installs nothing — zero overhead) when the
    ledger is off.  When armed: snapshots the perf registry so the
    manifest records *this run's* delta, and installs the session
    artifact observer that fingerprints every built artifact.
    """
    ledger_dir = obs.resolve_ledger_dir(args.ledger_dir)
    if ledger_dir is None:
        return None
    state = {
        "dir": ledger_dir,
        "t0": time.perf_counter(),
        "started": obs.utc_now_iso(),
        "before": runtime.STATS.snapshot(),
        "artifacts": {},
        "outputs": {},
    }

    def observe(name: str, key: tuple, seconds: float, value) -> None:
        label = name if not key[1] else name + "(" + ", ".join(
            f"{k}={v!r}" for k, v in key[1]) + ")"
        state["artifacts"][label] = {
            "seconds": round(seconds, 6),
            "sha256": obs.fingerprint(value),
        }

    set_artifact_observer(observe)
    return state


def _finalize_ledger(args: argparse.Namespace, state: dict,
                     argv: list[str], out) -> None:
    """Append this run's manifest to the ledger (success path only)."""
    delta = runtime.STATS.delta_since(state["before"])
    delta.pop("spans", None)
    manifest = obs.RunManifest(
        run_id=obs.new_run_id(),
        kind="cli",
        command=args.command,
        started=state["started"],
        duration_s=round(time.perf_counter() - state["t0"], 6),
        argv=[str(a) for a in argv],
        config=_runtime_config_dict(),
        universe={"n_transceivers": args.transceivers,
                  "seed": args.seed,
                  "whp_resolution_deg": args.whp_res,
                  "scale": getattr(args, "scale", None),
                  "hazard": getattr(args, "hazard", None),
                  "scenario": getattr(args, "scenario", None)},
        timers=delta["timers"],
        timer_calls=delta["timer_calls"],
        counters=delta["counters"],
        artifacts=dict(sorted(state["artifacts"].items())),
        outputs=dict(sorted(state["outputs"].items())),
        **obs.environment(),
    )
    try:
        path = obs.Ledger(state["dir"]).append(manifest)
    except OSError as exc:
        # An unwritable ledger must never sink a finished analysis —
        # same contract as an unwritable cache dir.
        out(f"ledger: unwritable ({exc}); run not recorded")
        return
    out(f"ledger: run {manifest.run_id} -> {path}")


def _run_ledger_command(args: argparse.Namespace, out) -> int:
    """The read-only ledger surfaces: history, compare, gate."""
    ledger_dir = obs.resolve_ledger_dir(args.ledger_dir,
                                        for_reading=True)
    if ledger_dir is None:
        out("no ledger found: pass --ledger-dir DIR (before the "
            "subcommand) or set REPRO_LEDGER_DIR")
        return 2
    ledger = obs.Ledger(ledger_dir)
    runs = ledger.runs()
    if args.command == "history":
        for bench in args.bench:
            runs.append(obs.ingest_bench(bench))
        runs.sort(key=lambda r: r.started)
        out(report.render_history(runs, stage=args.stage,
                                  limit=args.limit))
        if ledger.skipped:
            out(f"({ledger.skipped} corrupt ledger lines skipped)")
        return 0
    if not runs:
        out(f"ledger {ledger.path} has no runs")
        return 2
    if args.command == "compare":
        try:
            run_a = ledger.resolve(args.run_a, runs)
            run_b = ledger.resolve(args.run_b, runs)
        except KeyError as exc:
            out(str(exc.args[0]))
            return 2
        diff = obs.compare_runs(run_a, run_b,
                                min_seconds=args.min_seconds)
        out(report.render_compare(diff))
        return 0
    gate = obs.gate_check(runs, baseline=args.baseline,
                          threshold=args.threshold, stage=args.stage,
                          min_seconds=args.min_seconds)
    out(report.render_gate(gate))
    if not gate.ok:
        return 1
    if args.fail_on_drift and gate.drift:
        return 1
    return 0


def _configure_obs(args: argparse.Namespace) -> dict:
    """Arm the observability layer from CLI flags.

    Returns the state :func:`_finalize_obs` needs: the tracer (when
    tracing), the JSONL sink, and the stage profiler.  Tracing turns
    on for ``--trace`` / ``--log-json`` and the ``trace`` subcommand;
    everything stays off (and zero-cost) otherwise.
    """
    state: dict = {"tracer": None, "sink": None, "profiler": None}
    tracing = (args.trace is not None or args.log_json is not None
               or args.command == "trace")
    if tracing:
        state["tracer"] = obs.enable()
        state["tracer"].clear()     # spans from any earlier in-process run
    if args.log_json is not None:
        state["sink"] = obs.JsonlSink(args.log_json)
        state["tracer"].set_sink(state["sink"])
    if args.mem:
        obs.enable_memory_sampling()
    if args.profile is not None:
        state["profiler"] = obs.StageProfiler()
    return state


def _finalize_obs(args: argparse.Namespace, state: dict, out) -> None:
    """Write the requested exports and disarm the probes."""
    tracer = state["tracer"]
    if args.trace is not None and tracer is not None:
        obs.write_chrome_trace(args.trace, tracer)
        out(f"trace: {len(tracer.finished)} spans -> {args.trace}")
    if state["sink"] is not None:
        state["sink"].close()
    if args.metrics is not None:
        from pathlib import Path
        Path(args.metrics).write_text(
            obs.prometheus_text(runtime.STATS.snapshot()),
            encoding="utf-8")
    if state["profiler"] is not None:
        state["profiler"].dump(args.profile)
        out(f"profile: {len(state['profiler'].stages)} stages -> "
            f"{args.profile}")
    if args.mem:
        obs.disable_memory_sampling()
    if tracer is not None:
        obs.disable()


def main(argv: list[str] | None = None, stream=None) -> int:
    """CLI entry point.  Returns a process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    def out(text: str) -> None:
        stream.write(text + "\n")

    _configure_runtime(args)
    if args.command == "list":
        out(report.render_stage_list(iter_stages()))
        return 0
    if args.command in ("history", "compare", "gate"):
        return _run_ledger_command(args, out)

    obs_state = _configure_obs(args)
    profiler = obs_state["profiler"]
    ledger_state = _configure_ledger(args)

    def run_stage(stage, session) -> str:
        with obs.span(f"stage.{stage.name}", paper=stage.paper):
            with runtime.STATS.timer(f"cli.{stage.name}"):
                if profiler is not None:
                    with profiler.stage(stage.name):
                        text = stage.run(session, args)
                else:
                    text = stage.run(session, args)
        if ledger_state is not None:
            ledger_state["outputs"][stage.name] = \
                obs.checksum_text(text)
        return text

    try:
        session = AnalysisSession(_universe(args))
        if args.command == "trace":
            stages = stages_in_all() if args.stage == "all" \
                else (get_stage(args.stage),)
            for stage in stages:
                run_stage(stage, session)
            tracer = obs_state["tracer"]
            out(report.render_span_tree(tracer.finished,
                                        min_ms=args.min_ms,
                                        show_events=args.events))
            if args.out is not None:
                obs.write_chrome_trace(args.out, tracer)
                out(f"trace: {len(tracer.finished)} spans -> "
                    f"{args.out}")
        elif args.command == "all":
            for stage in stages_in_all():
                out(f"\n===== {stage.name} =====")
                out(run_stage(stage, session))
        else:
            out(run_stage(get_stage(args.command), session))
        if args.stats:
            out("")
            out(report.render_stats(runtime.STATS.snapshot()))
        if ledger_state is not None:
            _finalize_ledger(args, ledger_state,
                             argv if argv is not None else sys.argv[1:],
                             out)
    finally:
        if ledger_state is not None:
            set_artifact_observer(None)
        _finalize_obs(args, obs_state, out)
    return 0
