"""Command-line interface.

Reproduce any of the paper's tables and figures from a shell::

    python -m repro table1 -n 60000
    python -m repro fig7
    python -m repro map --figure 6
    python -m repro validate --oversample 16
    python -m repro list         # show the stage registry
    python -m repro all          # every table and figure

Every subcommand below is generated from the **stage registry**
(:mod:`repro.session`): each analysis module registers its stage
(name, CLI options, artifact, renderer), and this module only iterates
the registrations — ``repro all`` ordering, ``repro list``, and the
per-stage options all fall out of them.

Counts are printed both raw and rescaled to the paper's 5,364,949-
transceiver universe; every command prints the paper's number alongside.

Runtime knobs (see docs/runtime.md): ``--workers`` shards the spatial
joins across processes (or set ``REPRO_WORKERS``), ``--no-cache``
disables result memoization, ``--cache-dir`` adds an on-disk cache tier
that survives runs, and ``--stats`` prints per-stage wall times,
per-artifact session hit/miss counts, and index/cache counters after
the command.

Observability (see docs/observability.md): ``--trace FILE`` records a
hierarchical span tree — one span per stage, artifact build, join, and
worker chunk — as Chrome ``trace_event`` JSON for Perfetto;
``--log-json FILE`` streams the same spans as JSON lines;
``--metrics FILE`` writes a Prometheus text exposition of the perf
counters; ``--profile FILE`` runs every stage under cProfile;
``--mem`` samples RSS/heap per artifact build.  ``repro trace
[STAGE]`` runs a stage (default: everything) traced and prints the
span tree.
"""

from __future__ import annotations

import argparse
import sys

from . import obs, runtime
from .core import report
from .data import SyntheticUS, UniverseConfig
from .session import (
    AnalysisSession,
    StageOption,
    get_stage,
    iter_stages,
    register_stage,
    stages_in_all,
)

__all__ = ["main", "build_parser"]


def _run_map(session: AnalysisSession, args: argparse.Namespace) -> str:
    """ASCII-map stage: full-control runner over :mod:`repro.viz`."""
    from .viz import figures
    figure = getattr(args, "figure", 6)
    width = getattr(args, "width", 100)
    fig_fn = {2: figures.figure2, 3: figures.figure3,
              4: figures.figure4, 6: figures.figure6}[figure]
    return fig_fn(session.universe, width=width).ascii_art


register_stage("map", help="ASCII map of a figure",
               paper="Figures 2-6", run=_run_map,
               options=(StageOption("--figure", type=int, default=6,
                                    choices=(2, 3, 4, 6),
                                    help="figure number"),
                        StageOption("--width", type=int, default=100)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Five Alarms' (IMC 2020) tables/figures.")
    parser.add_argument("-n", "--transceivers", type=int, default=60_000,
                        help="synthetic universe size (default 60000)")
    parser.add_argument("--seed", type=int, default=20_190_722)
    parser.add_argument("--whp-res", type=float, default=0.1,
                        help="WHP grid resolution in degrees")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for spatial joins "
                             "(default: $REPRO_WORKERS or 1 = serial)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="points per parallel work unit")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the spatial-join result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: memory-only; $REPRO_CACHE_DIR)")
    parser.add_argument("--stats", action="store_true",
                        help="print runtime perf counters after the run")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON span tree "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--log-json", metavar="FILE", default=None,
                        help="stream spans and events as JSON lines")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a Prometheus text exposition of the "
                             "perf counters after the run")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="profile every stage under cProfile; dump "
                             "aggregated pstats to FILE")
    parser.add_argument("--mem", action="store_true",
                        help="sample RSS / Python-heap peak per "
                             "artifact build (adds span attributes)")
    sub = parser.add_subparsers(dest="command", required=True)

    for stage in iter_stages():
        stage_parser = sub.add_parser(stage.name, help=stage.help)
        for opt in stage.options:
            kwargs: dict = {"type": opt.type, "default": opt.default}
            if opt.help:
                kwargs["help"] = opt.help
            if opt.choices is not None:
                kwargs["choices"] = opt.choices
            stage_parser.add_argument(opt.flag, **kwargs)

    sub.add_parser("list", help="show the stage registry")
    sub.add_parser("all", help="every table and figure")
    trace_parser = sub.add_parser(
        "trace", help="run a stage traced and print the span tree")
    trace_parser.add_argument(
        "stage", nargs="?", default="all",
        choices=tuple(s.name for s in iter_stages()) + ("all",),
        help="stage to trace (default: all)")
    trace_parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the Chrome trace_event JSON to FILE")
    trace_parser.add_argument(
        "--min-ms", type=float, default=0.1,
        help="fold spans shorter than this (default 0.1ms)")
    trace_parser.add_argument(
        "--events", action="store_true",
        help="show instant events (cache/pool) in the tree")
    return parser


def _universe(args: argparse.Namespace) -> SyntheticUS:
    return SyntheticUS(UniverseConfig(
        n_transceivers=args.transceivers,
        seed=args.seed,
        whp_resolution_deg=args.whp_res,
    ))


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply CLI runtime flags to the global execution-layer config."""
    from pathlib import Path

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.no_cache:
        overrides["cache_enabled"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = Path(args.cache_dir)
    if overrides:
        runtime.configure(**overrides)
        runtime.set_cache(None)   # rebuild the cache from the new config


def _configure_obs(args: argparse.Namespace) -> dict:
    """Arm the observability layer from CLI flags.

    Returns the state :func:`_finalize_obs` needs: the tracer (when
    tracing), the JSONL sink, and the stage profiler.  Tracing turns
    on for ``--trace`` / ``--log-json`` and the ``trace`` subcommand;
    everything stays off (and zero-cost) otherwise.
    """
    state: dict = {"tracer": None, "sink": None, "profiler": None}
    tracing = (args.trace is not None or args.log_json is not None
               or args.command == "trace")
    if tracing:
        state["tracer"] = obs.enable()
        state["tracer"].clear()     # spans from any earlier in-process run
    if args.log_json is not None:
        state["sink"] = obs.JsonlSink(args.log_json)
        state["tracer"].set_sink(state["sink"])
    if args.mem:
        obs.enable_memory_sampling()
    if args.profile is not None:
        state["profiler"] = obs.StageProfiler()
    return state


def _finalize_obs(args: argparse.Namespace, state: dict, out) -> None:
    """Write the requested exports and disarm the probes."""
    tracer = state["tracer"]
    if args.trace is not None and tracer is not None:
        obs.write_chrome_trace(args.trace, tracer)
        out(f"trace: {len(tracer.finished)} spans -> {args.trace}")
    if state["sink"] is not None:
        state["sink"].close()
    if args.metrics is not None:
        from pathlib import Path
        Path(args.metrics).write_text(
            obs.prometheus_text(runtime.STATS.snapshot()),
            encoding="utf-8")
    if state["profiler"] is not None:
        state["profiler"].dump(args.profile)
        out(f"profile: {len(state['profiler'].stages)} stages -> "
            f"{args.profile}")
    if args.mem:
        obs.disable_memory_sampling()
    if tracer is not None:
        obs.disable()


def main(argv: list[str] | None = None, stream=None) -> int:
    """CLI entry point.  Returns a process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    def out(text: str) -> None:
        stream.write(text + "\n")

    _configure_runtime(args)
    if args.command == "list":
        out(report.render_stage_list(iter_stages()))
        return 0

    obs_state = _configure_obs(args)
    profiler = obs_state["profiler"]

    def run_stage(stage, session) -> str:
        with obs.span(f"stage.{stage.name}", paper=stage.paper):
            with runtime.STATS.timer(f"cli.{stage.name}"):
                if profiler is not None:
                    with profiler.stage(stage.name):
                        return stage.run(session, args)
                return stage.run(session, args)

    try:
        session = AnalysisSession(_universe(args))
        if args.command == "trace":
            stages = stages_in_all() if args.stage == "all" \
                else (get_stage(args.stage),)
            for stage in stages:
                run_stage(stage, session)
            tracer = obs_state["tracer"]
            out(report.render_span_tree(tracer.finished,
                                        min_ms=args.min_ms,
                                        show_events=args.events))
            if args.out is not None:
                obs.write_chrome_trace(args.out, tracer)
                out(f"trace: {len(tracer.finished)} spans -> "
                    f"{args.out}")
        elif args.command == "all":
            for stage in stages_in_all():
                out(f"\n===== {stage.name} =====")
                out(run_stage(stage, session))
        else:
            out(run_stage(get_stage(args.command), session))
        if args.stats:
            out("")
            out(report.render_stats(runtime.STATS.snapshot()))
    finally:
        _finalize_obs(args, obs_state, out)
    return 0
