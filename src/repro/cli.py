"""Command-line interface.

Reproduce any of the paper's tables and figures from a shell::

    python -m repro table1 -n 60000
    python -m repro fig7
    python -m repro map --figure 6
    python -m repro validate --oversample 16
    python -m repro list         # show the stage registry
    python -m repro all          # every table and figure

Every subcommand below is generated from the **stage registry**
(:mod:`repro.session`): each analysis module registers its stage
(name, CLI options, artifact, renderer), and this module only iterates
the registrations — ``repro all`` ordering, ``repro list``, and the
per-stage options all fall out of them.

Counts are printed both raw and rescaled to the paper's 5,364,949-
transceiver universe; every command prints the paper's number alongside.

Runtime knobs (see docs/runtime.md): ``--workers`` shards the spatial
joins across processes (or set ``REPRO_WORKERS``), ``--no-cache``
disables result memoization, ``--cache-dir`` adds an on-disk cache tier
that survives runs, and ``--stats`` prints per-stage wall times,
per-artifact session hit/miss counts, and index/cache counters after
the command.
"""

from __future__ import annotations

import argparse
import sys

from . import runtime
from .core import report
from .data import SyntheticUS, UniverseConfig
from .session import (
    AnalysisSession,
    StageOption,
    get_stage,
    iter_stages,
    register_stage,
    stages_in_all,
)

__all__ = ["main", "build_parser"]


def _run_map(session: AnalysisSession, args: argparse.Namespace) -> str:
    """ASCII-map stage: full-control runner over :mod:`repro.viz`."""
    from .viz import figures
    figure = getattr(args, "figure", 6)
    width = getattr(args, "width", 100)
    fig_fn = {2: figures.figure2, 3: figures.figure3,
              4: figures.figure4, 6: figures.figure6}[figure]
    return fig_fn(session.universe, width=width).ascii_art


register_stage("map", help="ASCII map of a figure",
               paper="Figures 2-6", run=_run_map,
               options=(StageOption("--figure", type=int, default=6,
                                    choices=(2, 3, 4, 6),
                                    help="figure number"),
                        StageOption("--width", type=int, default=100)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Five Alarms' (IMC 2020) tables/figures.")
    parser.add_argument("-n", "--transceivers", type=int, default=60_000,
                        help="synthetic universe size (default 60000)")
    parser.add_argument("--seed", type=int, default=20_190_722)
    parser.add_argument("--whp-res", type=float, default=0.1,
                        help="WHP grid resolution in degrees")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for spatial joins "
                             "(default: $REPRO_WORKERS or 1 = serial)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="points per parallel work unit")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the spatial-join result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: memory-only; $REPRO_CACHE_DIR)")
    parser.add_argument("--stats", action="store_true",
                        help="print runtime perf counters after the run")
    sub = parser.add_subparsers(dest="command", required=True)

    for stage in iter_stages():
        stage_parser = sub.add_parser(stage.name, help=stage.help)
        for opt in stage.options:
            kwargs: dict = {"type": opt.type, "default": opt.default}
            if opt.help:
                kwargs["help"] = opt.help
            if opt.choices is not None:
                kwargs["choices"] = opt.choices
            stage_parser.add_argument(opt.flag, **kwargs)

    sub.add_parser("list", help="show the stage registry")
    sub.add_parser("all", help="every table and figure")
    return parser


def _universe(args: argparse.Namespace) -> SyntheticUS:
    return SyntheticUS(UniverseConfig(
        n_transceivers=args.transceivers,
        seed=args.seed,
        whp_resolution_deg=args.whp_res,
    ))


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply CLI runtime flags to the global execution-layer config."""
    from pathlib import Path

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.no_cache:
        overrides["cache_enabled"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = Path(args.cache_dir)
    if overrides:
        runtime.configure(**overrides)
        runtime.set_cache(None)   # rebuild the cache from the new config


def main(argv: list[str] | None = None, stream=None) -> int:
    """CLI entry point.  Returns a process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    def out(text: str) -> None:
        print(text, file=stream)

    _configure_runtime(args)
    if args.command == "list":
        out(report.render_stage_list(iter_stages()))
        return 0

    session = AnalysisSession(_universe(args))
    if args.command == "all":
        for stage in stages_in_all():
            out(f"\n===== {stage.name} =====")
            with runtime.STATS.timer(f"cli.{stage.name}"):
                out(stage.run(session, args))
    else:
        with runtime.STATS.timer(f"cli.{args.command}"):
            out(get_stage(args.command).run(session, args))
    if args.stats:
        out("")
        out(report.render_stats(runtime.STATS.snapshot()))
    return 0
