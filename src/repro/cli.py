"""Command-line interface.

Reproduce any of the paper's tables and figures from a shell::

    python -m repro table1 -n 60000
    python -m repro fig7
    python -m repro map --figure 6
    python -m repro validate --oversample 16
    python -m repro all          # every table and figure

Counts are printed both raw and rescaled to the paper's 5,364,949-
transceiver universe; every command prints the paper's number alongside.

Runtime knobs (see docs/runtime.md): ``--workers`` shards the spatial
joins across processes (or set ``REPRO_WORKERS``), ``--no-cache``
disables result memoization, ``--cache-dir`` adds an on-disk cache tier
that survives runs, and ``--stats`` prints per-stage wall times and
index/cache counters after the command.
"""

from __future__ import annotations

import argparse
import sys

from . import runtime
from .core import report
from .data import SyntheticUS, UniverseConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Five Alarms' (IMC 2020) tables/figures.")
    parser.add_argument("-n", "--transceivers", type=int, default=60_000,
                        help="synthetic universe size (default 60000)")
    parser.add_argument("--seed", type=int, default=20_190_722)
    parser.add_argument("--whp-res", type=float, default=0.1,
                        help="WHP grid resolution in degrees")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for spatial joins "
                             "(default: $REPRO_WORKERS or 1 = serial)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="points per parallel work unit")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the spatial-join result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: memory-only; $REPRO_CACHE_DIR)")
    parser.add_argument("--stats", action="store_true",
                        help="print runtime perf counters after the run")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="historical analysis (Table 1)")
    sub.add_parser("table2", help="provider risk (Table 2)")
    sub.add_parser("table3", help="technology risk (Table 3)")
    sub.add_parser("fig5", help="2019 case study (Figure 5)")
    sub.add_parser("fig7", help="WHP hazard counts (Figure 7)")
    sub.add_parser("fig8", help="top states (Figure 8)")
    sub.add_parser("fig9", help="per-capita risk (Figure 9)")
    sub.add_parser("fig10", help="population impact (Figure 10)")
    sub.add_parser("fig12", help="metro ranking (Figure 12)")
    sub.add_parser("ecoregions", help="SLC-Denver projections (Figs "
                                      "14-15)")

    validate = sub.add_parser("validate",
                              help="2019 WHP validation (S3.4)")
    validate.add_argument("--oversample", type=int, default=8)

    extend = sub.add_parser("extend", help="VH extension (S3.8)")
    extend.add_argument("--radius-miles", type=float, default=0.5)

    power = sub.add_parser("power", help="power dependency (S3.11)")
    power.add_argument("--year", type=int, default=2019)

    sub.add_parser("coverage", help="coverage loss (S3.11)")

    fig_map = sub.add_parser("map", help="ASCII map of a figure")
    fig_map.add_argument("--figure", type=int, default=6,
                         choices=(2, 3, 4, 6), help="figure number")
    fig_map.add_argument("--width", type=int, default=100)

    sub.add_parser("all", help="every table and figure")
    return parser


def _universe(args: argparse.Namespace) -> SyntheticUS:
    return SyntheticUS(UniverseConfig(
        n_transceivers=args.transceivers,
        seed=args.seed,
        whp_resolution_deg=args.whp_res,
    ))


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply CLI runtime flags to the global execution-layer config."""
    from pathlib import Path

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.no_cache:
        overrides["cache_enabled"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = Path(args.cache_dir)
    if overrides:
        runtime.configure(**overrides)
        runtime.set_cache(None)   # rebuild the cache from the new config


def _run_command(command: str, args: argparse.Namespace,
                 universe: SyntheticUS, out) -> None:
    from .core import (
        case_study_analysis,
        coverage_loss_analysis,
        extend_very_high,
        fire_power_impact,
        future_risk_analysis,
        hazard_analysis,
        historical_analysis,
        metro_risk_analysis,
        population_impact_analysis,
        provider_risk_analysis,
        technology_risk_analysis,
        validate_whp_2019,
    )

    if command == "table1":
        out(report.render_table1(historical_analysis(universe)))
    elif command == "table2":
        out(report.render_table2(provider_risk_analysis(universe)))
    elif command == "table3":
        out(report.render_table3(technology_risk_analysis(universe)))
    elif command == "fig5":
        out(report.render_figure5(case_study_analysis(universe)))
    elif command == "fig7":
        out(report.render_figure7(hazard_analysis(universe)))
    elif command == "fig8":
        out(report.render_figure8(hazard_analysis(universe)))
    elif command == "fig9":
        out(report.render_figure9(hazard_analysis(universe)))
    elif command == "fig10":
        out(report.render_figure10(
            population_impact_analysis(universe)))
    elif command == "fig12":
        out(report.render_figure12(metro_risk_analysis(universe)))
    elif command == "ecoregions":
        out(report.render_ecoregions(future_risk_analysis(universe)))
    elif command == "validate":
        oversample = getattr(args, "oversample", 8)
        out(report.render_validation(
            validate_whp_2019(universe, oversample=oversample)))
    elif command == "extend":
        radius = getattr(args, "radius_miles", 0.5)
        out(report.render_extension(
            extend_very_high(universe, radius_miles=radius)))
    elif command == "power":
        impact = fire_power_impact(universe, getattr(args, "year", 2019))
        out(f"{impact.year}: {impact.sites_direct} sites inside "
            f"perimeters, {impact.sites_indirect} more lose power "
            f"({impact.substations_hit} substations hit, "
            f"{impact.lines_cut} lines cut)")
    elif command == "coverage":
        r = coverage_loss_analysis(universe)
        out(f"baseline coverage {r.covered_share_before:.0%}; losing "
            f"{r.sites_lost:,} at-risk sites strands "
            f"{r.population_lost / 1e6:.1f}M people "
            f"({r.lost_share:.2%} of US)")
    elif command == "map":
        from .viz import figures
        fig_fn = {2: figures.figure2, 3: figures.figure3,
                  4: figures.figure4, 6: figures.figure6}[args.figure]
        out(fig_fn(universe, width=args.width).ascii_art)
    else:
        raise ValueError(f"unknown command: {command}")


def main(argv: list[str] | None = None, stream=None) -> int:
    """CLI entry point.  Returns a process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    def out(text: str) -> None:
        print(text, file=stream)

    _configure_runtime(args)
    universe = _universe(args)
    if args.command == "all":
        for command in ("table1", "table2", "table3", "fig5", "fig7",
                        "fig8", "fig9", "fig10", "fig12", "ecoregions",
                        "validate", "extend", "power", "coverage"):
            out(f"\n===== {command} =====")
            with runtime.STATS.timer(f"cli.{command}"):
                _run_command(command, args, universe, out)
    else:
        with runtime.STATS.timer(f"cli.{args.command}"):
            _run_command(args.command, args, universe, out)
    if args.stats:
        out("")
        out(report.render_stats(runtime.STATS.snapshot()))
    return 0
