"""Five Alarms — reproduction of the IMC 2020 wildfire/cellular study.

A self-contained geospatial risk-analysis library assessing the
vulnerability of US cellular infrastructure to wildfires, with every
substrate the paper depends on (GIS engine, synthetic data sets) built
in.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro import SyntheticUS, UniverseConfig, hazard_analysis
    universe = SyntheticUS(UniverseConfig(n_transceivers=50_000))
    summary = hazard_analysis(universe)
    print(summary.class_counts)
"""

from . import core, data, geo, runtime
from .core import (
    case_study_analysis,
    coverage_loss_analysis,
    fire_power_impact,
    psps_exposure,
    city_very_high_counts,
    escape_adjusted_risk,
    extend_very_high,
    future_risk_analysis,
    hazard_analysis,
    historical_analysis,
    metro_risk_analysis,
    mitigation_plan,
    overlay_fires,
    population_impact_analysis,
    population_served_at_risk,
    provider_risk_analysis,
    technology_risk_analysis,
    total_in_perimeters,
    validate_whp_2019,
)
from .data import (
    CellUniverse,
    SyntheticUS,
    UniverseConfig,
    WHPClass,
    default_universe,
    small_universe,
)
from .session import AnalysisSession, session_of

__version__ = "1.0.0"

__all__ = [
    "geo", "data", "core", "runtime",
    "AnalysisSession", "session_of",
    "SyntheticUS", "UniverseConfig", "CellUniverse", "WHPClass",
    "default_universe", "small_universe",
    "historical_analysis", "total_in_perimeters", "case_study_analysis",
    "hazard_analysis", "population_served_at_risk", "validate_whp_2019",
    "extend_very_high", "provider_risk_analysis",
    "technology_risk_analysis", "population_impact_analysis",
    "metro_risk_analysis", "city_very_high_counts",
    "future_risk_analysis", "mitigation_plan", "escape_adjusted_risk",
    "coverage_loss_analysis", "fire_power_impact", "psps_exposure",
    "overlay_fires",
    "__version__",
]
