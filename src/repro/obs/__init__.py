"""repro.obs — structured observability for the artifact runtime.

The flat :data:`repro.runtime.stats.STATS` registry answers *how much*
(cumulative seconds, monotonic counters); this package answers *where
and when*: a hierarchical span tree over every artifact build, stage
dispatch, spatial join, parallel chunk, and cache/pool event — plus
exporters (Chrome trace_event for Perfetto, Prometheus text, JSON
lines) and opt-in profiling hooks (per-artifact RSS/heap sampling,
per-stage cProfile).

Layering:

* :mod:`.trace` — :class:`Span` / :class:`Tracer`, the :func:`span` /
  :func:`event` probes, and the worker → parent adoption protocol that
  rides the existing ``STATS.snapshot()/merge()`` channel;
* :mod:`.export` — trace_event JSON, Prometheus exposition, JSONL sink;
* :mod:`.profile` — memory sampling and the cProfile stage wrapper;
* :mod:`.manifest` / :mod:`.ledger` — per-run provenance manifests
  (git SHA, config, timings, counters, output checksums) and the
  append-only run ledger behind ``repro history`` / ``repro compare``
  / ``repro gate``.

Everything is stdlib-only and **zero-overhead when disabled**: the
probes check one module-level boolean and return a shared no-op, so
`repro all` without ``--trace`` runs the exact hot path it always did.

CLI surface (see docs/observability.md): ``--trace FILE``,
``--log-json FILE``, ``--metrics FILE``, ``--profile FILE``, ``--mem``,
and the ``repro trace [stage]`` subcommand.
"""

from .export import (
    JsonlSink,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
)
from .ledger import (
    DEFAULT_LEDGER_DIR,
    GateReport,
    Ledger,
    compare_runs,
    gate_check,
    ingest_bench,
    resolve_ledger_dir,
)
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    checksum_text,
    environment,
    fingerprint,
    git_sha,
    new_run_id,
    utc_now_iso,
    version_string,
)
from .profile import (
    StageProfiler,
    disable_memory_sampling,
    enable_memory_sampling,
    memory_probe,
    memory_sampling_enabled,
    rss_kb,
)
from .trace import (
    Span,
    Tracer,
    disable,
    enable,
    event,
    get_tracer,
    is_enabled,
    span,
)

__all__ = [
    "Span", "Tracer",
    "enable", "disable", "is_enabled", "get_tracer", "span", "event",
    "chrome_trace", "write_chrome_trace", "prometheus_text", "JsonlSink",
    "StageProfiler", "enable_memory_sampling", "disable_memory_sampling",
    "memory_sampling_enabled", "memory_probe", "rss_kb",
    "MANIFEST_SCHEMA", "RunManifest", "checksum_text", "environment",
    "fingerprint", "git_sha", "new_run_id", "utc_now_iso",
    "version_string",
    "DEFAULT_LEDGER_DIR", "GateReport", "Ledger", "compare_runs",
    "gate_check", "ingest_bench", "resolve_ledger_dir",
]
