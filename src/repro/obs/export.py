"""Exporters: Chrome trace_event JSON, Prometheus text, JSON lines.

Three ways out of the tracer and the stats registry:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (one ``"X"`` complete event per span, ``"i"``
  instants, ``"M"`` process-name metadata).  Load the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``; each worker pid is
  its own track, so the fire-sharded overlay shows up as parallel lanes
  under the dispatching join.
* :func:`prometheus_text` — Prometheus/OpenMetrics-style text
  exposition of the :class:`~repro.runtime.stats.PerfRegistry`
  snapshot: stage seconds and calls as counters labeled by stage,
  named counters labeled by name.
* :class:`JsonlSink` — a tracer sink that streams one JSON object per
  finished span/event to a file (the CLI ``--log-json`` surface).

Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .trace import Span, Tracer

__all__ = [
    "JsonlSink",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
]


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(spans: list[Span], *, main_pid: int | None = None,
                 label: str = "repro") -> dict:
    """Render spans as a Chrome ``trace_event`` document (a dict).

    Spans become ``"X"`` (complete) events with microsecond ``ts`` /
    ``dur`` (``ts`` zeroed at the earliest span, so traces start at
    t=0); instants become ``"i"`` events; every distinct pid gets a
    ``process_name`` metadata record so Perfetto labels the main
    process and each worker as separate tracks.
    """
    epoch = min((sp.start for sp in spans), default=0.0)
    if main_pid is None and spans:
        # The earliest span is opened by the dispatching process.
        main_pid = min(spans, key=lambda sp: sp.start).pid
    events: list[dict] = []
    seen_pids: list[int] = []
    for sp in spans:
        if sp.pid not in seen_pids:
            seen_pids.append(sp.pid)
        record = {
            "name": sp.name,
            "ph": "i" if sp.kind == "instant" else "X",
            "ts": int((sp.start - epoch) * 1e6),
            "pid": sp.pid,
            "tid": 1,
            "args": _json_safe(dict(sp.attrs, span_id=sp.span_id,
                                    parent_id=sp.parent_id)),
        }
        if sp.kind == "instant":
            record["s"] = "p"       # process-scoped instant marker
        else:
            record["dur"] = max(int(sp.duration * 1e6), 1)
        events.append(record)
    for pid in seen_pids:
        name = f"{label} (main)" if pid == main_pid \
            else f"{label} worker {pid}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 1, "args": {"name": name}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "generated_unix": time.time(),
            "n_spans": len(spans),
        },
    }


def write_chrome_trace(path: str | Path, tracer: Tracer,
                       label: str = "repro") -> dict:
    """Write the tracer's finished spans to ``path``; returns the doc."""
    doc = chrome_trace(tracer.finished, label=label)
    Path(path).write_text(json.dumps(doc, indent=1) + "\n",
                          encoding="utf-8")
    return doc


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _label_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def prometheus_text(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a :meth:`PerfRegistry.snapshot` as Prometheus text.

    Three metric families: ``<prefix>_stage_seconds_total`` and
    ``<prefix>_stage_calls_total`` labeled by ``stage``, and
    ``<prefix>_events_total`` labeled by ``counter``.  All are
    monotonic counters, matching the registry's semantics.
    """
    timers = snapshot.get("timers", {})
    calls = snapshot.get("timer_calls", {})
    counters = snapshot.get("counters", {})
    lines = [
        f"# HELP {prefix}_stage_seconds_total "
        "Cumulative wall-clock seconds per stage.",
        f"# TYPE {prefix}_stage_seconds_total counter",
    ]
    for stage in sorted(timers):
        lines.append(f'{prefix}_stage_seconds_total'
                     f'{{stage="{_label_escape(stage)}"}} '
                     f'{timers[stage]:.6f}')
    lines += [
        f"# HELP {prefix}_stage_calls_total "
        "Number of times each stage ran.",
        f"# TYPE {prefix}_stage_calls_total counter",
    ]
    for stage in sorted(calls):
        lines.append(f'{prefix}_stage_calls_total'
                     f'{{stage="{_label_escape(stage)}"}} {calls[stage]}')
    lines += [
        f"# HELP {prefix}_events_total "
        "Monotonic named counters (index, cache, pool, session).",
        f"# TYPE {prefix}_events_total counter",
    ]
    for name in sorted(counters):
        lines.append(f'{prefix}_events_total'
                     f'{{counter="{_label_escape(name)}"}} '
                     f'{counters[name]}')
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON-lines event stream
# ----------------------------------------------------------------------

class JsonlSink:
    """Tracer sink writing one JSON object per finished span.

    Install with ``tracer.set_sink(JsonlSink(path))``; close (or use as
    a context manager) when the run ends.  Records carry a ``type``
    field (``span`` | ``instant``) plus the span's wire form.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def __call__(self, span_dict: dict) -> None:
        record = dict(span_dict, type=span_dict.get("kind", "span"))
        record["attrs"] = _json_safe(record.get("attrs", {}))
        self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
