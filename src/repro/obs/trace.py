"""Hierarchical spans: the core of the observability layer.

A :class:`Span` is one named, timed region of the analysis — an
artifact build, a stage dispatch, a spatial join, a parallel chunk —
with attributes, a parent link, and the pid that produced it.  The
process-global :class:`Tracer` maintains the open-span stack, records
finished spans in completion order, and emits instant events (cache
hits, pool lifecycle) as zero-duration spans.

**Zero overhead when disabled.**  Tracing is off by default; every
probe (:func:`span`, :func:`event`) checks one boolean and returns a
shared no-op context manager, so the hot paths pay a function call and
a branch — nothing is allocated, nothing is timed.  Enabling tracing
(:func:`enable`) also installs the tracer as the
:mod:`repro.runtime.stats` *trace channel*, which is how worker-process
spans travel home: a worker task's ``STATS.delta_since(before)`` then
carries the spans it opened, and the parent's ``STATS.merge(delta)``
re-parents them under the span active at the merge site (the
dispatching join).  Under ``fork`` the workers inherit the enabled
tracer; start contexts without ``fork`` simply ship no spans — the
channel degrades to the flat counters, never to an error.

Timestamps are ``time.perf_counter()`` seconds.  On Linux that clock is
``CLOCK_MONOTONIC`` — system-wide, shared by forked workers — so
parent and worker spans are directly comparable in one timeline.

This module is stdlib-only and import-light: it is imported by
``repro.session`` and the runtime modules.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "disable",
    "enable",
    "event",
    "get_tracer",
    "is_enabled",
    "span",
]


@dataclass
class Span:
    """One finished (or open) region of the trace tree.

    ``kind`` is ``"span"`` for timed regions and ``"instant"`` for
    zero-duration point events.  ``span_id``/``parent_id`` are unique
    within one tracer; adoption (see :meth:`Tracer.adopt`) remaps ids
    so worker spans never collide with the parent's.
    """

    name: str
    span_id: int
    parent_id: int | None
    pid: int
    start: float                    # perf_counter seconds
    duration: float = 0.0
    kind: str = "span"
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> "Span":
        """Attach attributes from inside the ``with`` body."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """JSON-serializable form (the worker → parent wire format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "start": self.start,
            "duration": self.duration,
            "kind": self.kind,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(name=d["name"], span_id=d["span_id"],
                   parent_id=d.get("parent_id"), pid=d.get("pid", 0),
                   start=d.get("start", 0.0),
                   duration=d.get("duration", 0.0),
                   kind=d.get("kind", "span"),
                   attrs=dict(d.get("attrs", {})))


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a real span on the tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(name=name, span_id=next(tracer._ids),
                          parent_id=None, pid=os.getpid(),
                          start=0.0, attrs=attrs)

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack
        sp = self._span
        if stack:
            sp.parent_id = stack[-1].span_id
        stack.append(sp)
        sp.start = time.perf_counter()
        return sp

    def __exit__(self, *exc) -> bool:
        sp = self._span
        sp.duration = time.perf_counter() - sp.start
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is sp:
            tracer._stack.pop()
        else:                       # mis-nested exit: drop up to us
            while tracer._stack and tracer._stack[-1] is not sp:
                tracer._stack.pop()
            if tracer._stack:
                tracer._stack.pop()
        tracer._record(sp)
        return False


class Tracer:
    """Collects spans for one process; adoptable across processes.

    ``sink`` (optional) is called with each finished span's dict —
    the ``--log-json`` JSON-lines stream.  Sinks fire only in the
    process that installed them (forked children inherit the module
    state but must not double-write the parent's file handle).
    """

    def __init__(self):
        self.enabled = False
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        self._sink = None
        self._sink_pid: int | None = None

    # -- probes --------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instant (zero-duration) event at the current
        position in the tree."""
        parent = self._stack[-1].span_id if self._stack else None
        self._record(Span(name=name, span_id=next(self._ids),
                          parent_id=parent, pid=os.getpid(),
                          start=time.perf_counter(), duration=0.0,
                          kind="instant", attrs=attrs))

    def _record(self, sp: Span) -> None:
        self.finished.append(sp)
        if self._sink is not None and self._sink_pid == os.getpid():
            self._sink(sp.to_dict())

    # -- sinks ---------------------------------------------------------

    def set_sink(self, sink) -> None:
        """Stream every finished span's dict to ``sink`` (or None)."""
        self._sink = sink
        self._sink_pid = os.getpid() if sink is not None else None

    # -- worker transport (the stats trace channel) --------------------

    def span_count(self) -> int:
        return len(self.finished)

    def export_spans(self, since: int = 0) -> list[dict]:
        """Serialized spans finished after index ``since``."""
        return [sp.to_dict() for sp in self.finished[since:]]

    def adopt(self, serialized: list[dict],
              parent_id: int | None = None) -> list[Span]:
        """Fold spans from another process into this tracer.

        Ids are remapped to fresh local ids (two passes: parents close
        after their children, so a child can arrive first); roots are
        re-parented under ``parent_id`` — by default the span active
        here right now, i.e. the dispatching join doing the merge.
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        adopted = [Span.from_dict(d) for d in serialized]
        mapping = {sp.span_id: next(self._ids) for sp in adopted}
        for sp in adopted:
            sp.span_id = mapping[sp.span_id]
            sp.parent_id = mapping.get(sp.parent_id, parent_id)
            self._record(sp)
        return adopted

    # -- tree access ---------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished spans with no (known) parent, in start order."""
        known = {sp.span_id for sp in self.finished}
        return sorted((sp for sp in self.finished
                       if sp.parent_id not in known),
                      key=lambda sp: sp.start)

    def children_of(self, span_id: int) -> list[Span]:
        return sorted((sp for sp in self.finished
                       if sp.parent_id == span_id),
                      key=lambda sp: sp.start)

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()


#: The process-global tracer.  One per process; forked workers inherit
#: it (enabled flag included) and ship their spans home via the stats
#: trace channel.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def is_enabled() -> bool:
    return _TRACER.enabled


def enable() -> Tracer:
    """Turn tracing on and hook the tracer into the stats channel."""
    from ..runtime import stats
    _TRACER.enabled = True
    stats.set_trace_channel(_TRACER)
    return _TRACER


def disable() -> None:
    """Turn tracing off and unhook the stats channel (spans already
    collected stay on the tracer until :meth:`Tracer.clear`)."""
    from ..runtime import stats
    _TRACER.enabled = False
    _TRACER.set_sink(None)
    stats.set_trace_channel(None)


def span(name: str, **attrs):
    """Open a span around a ``with`` body — or do nothing, cheaply.

    This is the probe the instrumented call sites use::

        with span("artifact.hazard", year=2019) as sp:
            ...
            sp.set(rows=len(out))

    When tracing is disabled (the default) it returns a shared no-op
    context manager: one branch, zero allocation.
    """
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event (cache hit, pool reuse, fallback)."""
    if _TRACER.enabled:
        _TRACER.event(name, **attrs)
