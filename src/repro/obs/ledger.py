"""The run ledger: an append-only JSONL log of run manifests.

Every ``repro`` invocation (stages, ``all``, ``trace``) and every
benchmark session can append a :class:`~repro.obs.manifest.RunManifest`
to a local ledger — one canonical-JSON line per run in
``<dir>/ledger.jsonl``.  The ledger is **off by default** and costs
nothing when off; arm it with ``--ledger-dir DIR`` or
``REPRO_LEDGER_DIR`` (the conventional location is ``.repro/ledger``).

On top of the log live the three analysis surfaces the CLI exposes:

* :meth:`Ledger.runs` / :meth:`Ledger.resolve` — read runs back
  (corrupt lines are skipped, never fatal) and resolve user references
  (``-1`` = latest, ``-2`` = one before, or any run-id prefix);
* :func:`compare_runs` — perf deltas, counter deltas, and output /
  artifact checksum drift between two runs (``repro compare``);
* :func:`gate_check` — the statistical regression gate
  (``repro gate``): the latest run against the **median of the last N
  baseline runs**, flagging *regressions* (a timer or counter blew
  past ``threshold ×`` median) separately from *drift* (an output or
  artifact checksum changed while timings stayed healthy);
* :func:`ingest_bench` — converts a ``BENCH_runtime.json`` (schema
  ``bench-runtime/1`` or ``/2``) into a manifest so benchmark
  trajectories and CLI runs share one history.

Stdlib-only.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from .manifest import RunManifest

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "GateReport",
    "Ledger",
    "compare_runs",
    "gate_check",
    "ingest_bench",
    "resolve_ledger_dir",
]

#: Conventional in-repo ledger location (used by ``repro history`` /
#: ``compare`` / ``gate`` when no dir is given and it exists).
DEFAULT_LEDGER_DIR = Path(".repro/ledger")

LEDGER_FILENAME = "ledger.jsonl"


def resolve_ledger_dir(cli_dir: str | Path | None = None, *,
                       for_reading: bool = False) -> Path | None:
    """Resolve the ledger directory: CLI flag > env > (reads only) the
    conventional ``.repro/ledger`` if it already exists.  ``None``
    means the ledger stays off (writes) or is absent (reads)."""
    if cli_dir:
        return Path(cli_dir)
    env = os.environ.get("REPRO_LEDGER_DIR")
    if env:
        return Path(env)
    if for_reading and DEFAULT_LEDGER_DIR.is_dir():
        return DEFAULT_LEDGER_DIR
    return None


class Ledger:
    """One append-only JSONL manifest log under ``root``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.path = self.root / LEDGER_FILENAME
        #: Lines the last :meth:`runs` call could not parse.
        self.skipped = 0

    def append(self, manifest: RunManifest) -> Path:
        """Append one manifest as a canonical JSON line."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(manifest.to_json() + "\n")
        return self.path

    def runs(self) -> list[RunManifest]:
        """All runs, oldest first.  Blank/corrupt lines are counted in
        :attr:`skipped` and otherwise ignored — a torn write must never
        take the history down with it."""
        self.skipped = 0
        out: list[RunManifest] = []
        if not self.path.exists():
            return out
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                out.append(RunManifest.from_json(line))
            except (json.JSONDecodeError, TypeError, KeyError):
                self.skipped += 1
        return out

    def last(self, n: int) -> list[RunManifest]:
        return self.runs()[-n:]

    def resolve(self, ref: str,
                runs: list[RunManifest] | None = None) -> RunManifest:
        """Resolve ``ref`` to a run: a (possibly negative) integer
        indexes the run list (``-1`` = latest); anything else is a
        run-id prefix, which must match exactly one run.  An all-digit
        ref that is out of range as an index falls back to prefix
        matching (run ids are hex, so ``328`` can be either)."""
        if runs is None:
            runs = self.runs()
        if not runs:
            raise KeyError(f"ledger {self.path} has no runs")
        index_error = None
        try:
            index = int(ref)
        except ValueError:
            pass
        else:
            try:
                return runs[index]
            except IndexError:
                index_error = (f"run index {index} out of range "
                               f"({len(runs)} runs)")
        matches = [r for r in runs if r.run_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if index_error is not None and not matches:
            raise KeyError(index_error)
        kind = "no run" if not matches else f"{len(matches)} runs"
        raise KeyError(f"run reference {ref!r} matches {kind} "
                       f"in {self.path}") from None


# ----------------------------------------------------------------------
# BENCH_runtime.json ingestion
# ----------------------------------------------------------------------

def ingest_bench(path: str | Path) -> RunManifest:
    """Convert a ``BENCH_runtime.json`` into a bench-kind manifest.

    Handles schema ``bench-runtime/1`` (bare ``generated_unix`` float,
    no SHA/cpu count) and ``bench-runtime/2`` (ISO-8601 UTC timestamp,
    git SHA, cpu count); anything else raises ``ValueError``.
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    schema = doc.get("schema")
    if schema not in ("bench-runtime/1", "bench-runtime/2"):
        raise ValueError(f"{path}: unknown bench schema {schema!r}")
    if schema == "bench-runtime/2":
        started = doc.get("generated_iso", "")
    else:
        unix = doc.get("generated_unix", 0.0)
        started = datetime.fromtimestamp(
            unix, tz=timezone.utc).isoformat(timespec="seconds")
    timers = dict(doc.get("stages_seconds", {}))
    return RunManifest(
        run_id="bench-" + hashlib.sha256(
            (path.name + started).encode()).hexdigest()[:8],
        kind="bench",
        command="bench",
        started=started,
        duration_s=sum(timers.values()),
        git_sha=doc.get("git_sha"),
        python=doc.get("python", ""),
        machine=doc.get("machine", ""),
        cpu_count=doc.get("cpu_count", 0),
        config=dict(doc.get("config", {})),
        timers=timers,
        timer_calls=dict(doc.get("stage_calls", {})),
        counters=dict(doc.get("counters", {})),
        extra={"sections": doc.get("sections", {}),
               "bench_schema": schema},
    )


# ----------------------------------------------------------------------
# Run comparison (repro compare)
# ----------------------------------------------------------------------

def compare_runs(a: RunManifest, b: RunManifest, *,
                 min_seconds: float = 0.0) -> dict:
    """Structured diff of two runs.

    Returns ``{"a", "b", "timers", "counters", "outputs",
    "artifacts", "context"}``: timers/counters as ``(name, a_value,
    b_value)`` rows over the union of names (timers below
    ``min_seconds`` on both sides are dropped), outputs/artifacts as
    drift buckets (``changed`` / ``added`` / ``removed`` relative to
    ``a``).  ``context`` lists deliberate configuration differences —
    the runs joined different hazards or scenarios — as ``(key,
    a_value, b_value)`` rows, so the renderer can label output drift
    as a config change rather than unexplained divergence.
    """
    timer_rows = []
    for name in sorted(set(a.timers) | set(b.timers)):
        av, bv = a.timers.get(name, 0.0), b.timers.get(name, 0.0)
        if max(av, bv) >= min_seconds:
            timer_rows.append((name, av, bv))
    counter_rows = []
    for name in sorted(set(a.counters) | set(b.counters)):
        av, bv = a.counters.get(name, 0), b.counters.get(name, 0)
        counter_rows.append((name, av, bv))

    def _drift(a_map: dict, b_map: dict, digest) -> dict:
        return {
            "changed": [n for n in sorted(set(a_map) & set(b_map))
                        if digest(a_map[n]) != digest(b_map[n])],
            "added": sorted(set(b_map) - set(a_map)),
            "removed": sorted(set(a_map) - set(b_map)),
        }

    # Hazard/scenario selections live in the universe dict; older
    # manifests predate the keys, so missing reads as None on both
    # sides and never flags.
    context_rows = []
    for key in ("hazard", "scenario"):
        av = (a.universe or {}).get(key)
        bv = (b.universe or {}).get(key)
        if av != bv:
            context_rows.append((key, av, bv))

    return {
        "a": a,
        "b": b,
        "timers": timer_rows,
        "counters": counter_rows,
        "outputs": _drift(a.outputs, b.outputs, lambda v: v),
        "artifacts": _drift(a.artifacts, b.artifacts,
                            lambda v: v.get("sha256")),
        "context": context_rows,
    }


# ----------------------------------------------------------------------
# The statistical regression gate (repro gate)
# ----------------------------------------------------------------------

@dataclass
class GateReport:
    """Outcome of one :func:`gate_check`.

    ``regressions`` — timers/counters whose latest value exceeded
    ``threshold ×`` the baseline median (each row carries ``name``,
    ``kind``, ``latest``, ``median``, ``ratio``).  ``drift`` — outputs
    or artifacts whose checksum no longer matches the most recent
    baseline run (``name``, ``kind``).  Drift is *not* a regression:
    it means the results changed, not that the code got slower.
    """

    latest: RunManifest
    baseline_ids: list[str] = field(default_factory=list)
    threshold: float = 1.3
    regressions: list[dict] = field(default_factory=list)
    drift: list[dict] = field(default_factory=list)
    skipped_small: int = 0

    @property
    def ok(self) -> bool:
        """True when no *regression* was found (drift is reported but
        does not fail the gate by itself)."""
        return not self.regressions

    @property
    def has_baseline(self) -> bool:
        return bool(self.baseline_ids)


def gate_check(runs: list[RunManifest], *, baseline: int = 5,
               threshold: float = 1.3, stage: str | None = None,
               min_seconds: float = 0.05,
               counter_floor: int = 1000) -> GateReport:
    """Gate the latest run against the median of the previous runs.

    The baseline is the up-to-``baseline`` runs preceding the latest.
    Per timer, the latest value regresses when it exceeds ``threshold
    ×`` the baseline median and at least one side is ``min_seconds``
    or more (sub-floor timers are scheduler noise, not signal).  Per
    counter the same ratio applies, with an absolute ``counter_floor``
    increase required — counters are deterministic, so a blowup means
    an algorithmic slip (lost index selectivity, cache misses), not
    noise.  Output/artifact checksums are compared against the most
    recent baseline run and reported as drift.

    With fewer than one baseline run the gate passes vacuously
    (``has_baseline`` is False) so a fresh ledger never blocks CI.
    """
    if not runs:
        raise ValueError("gate_check needs at least one run")
    latest = runs[-1]
    base = runs[max(0, len(runs) - 1 - baseline):-1]
    report = GateReport(latest=latest,
                        baseline_ids=[r.run_id for r in base],
                        threshold=threshold)
    if not base:
        return report

    def _selected(name: str) -> bool:
        if stage is None:
            return True
        return name in (stage, f"cli.{stage}", f"artifact.{stage}")

    for name in sorted(latest.timers):
        if not _selected(name):
            continue
        history = [r.timers[name] for r in base if name in r.timers]
        if not history:
            continue
        med = statistics.median(history)
        value = latest.timers[name]
        if max(value, med) < min_seconds:
            report.skipped_small += 1
            continue
        if value > threshold * med:
            report.regressions.append({
                "name": name, "kind": "timer", "latest": value,
                "median": med, "ratio": value / max(med, 1e-12)})

    for name in sorted(latest.counters):
        if not _selected(name):
            continue
        history = [r.counters[name] for r in base if name in r.counters]
        if not history:
            continue
        med = statistics.median(history)
        value = latest.counters[name]
        if value > threshold * med and value - med > counter_floor:
            report.regressions.append({
                "name": name, "kind": "counter", "latest": value,
                "median": med, "ratio": value / max(med, 1e-12)})

    reference = base[-1]
    for name in sorted(set(latest.outputs) & set(reference.outputs)):
        if stage is not None and name != stage:
            continue
        if latest.outputs[name] != reference.outputs[name]:
            report.drift.append({"name": name, "kind": "output"})
    for name in sorted(set(latest.artifacts) & set(reference.artifacts)):
        if latest.artifacts[name].get("sha256") != \
                reference.artifacts[name].get("sha256"):
            report.drift.append({"name": name, "kind": "artifact"})
    return report
