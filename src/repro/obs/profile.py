"""Opt-in profiling and resource hooks.

Two independent probes, both off by default and free when off:

* **Memory sampling** (:func:`enable_memory_sampling`) — every artifact
  build's span gains RSS before/after (via ``/proc/self/statm``, with a
  ``resource.getrusage`` peak fallback) and, when ``tracemalloc`` is
  active, the Python-heap peak over the build.  Sampling costs one
  ``/proc`` read per artifact build — dozens per run, nothing per
  point — so it is safe to leave on for whole reproductions.
* **Stage profiling** (:class:`StageProfiler`) — a ``cProfile`` wrapper
  the CLI arms with ``--profile FILE``: every stage dispatch runs under
  one shared profiler, dumped as a ``pstats`` file at exit (load with
  ``python -m pstats FILE`` or snakeviz) plus a top-N text summary.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import tracemalloc
from contextlib import contextmanager
from pathlib import Path

from .trace import Span

__all__ = [
    "StageProfiler",
    "disable_memory_sampling",
    "enable_memory_sampling",
    "memory_probe",
    "memory_sampling_enabled",
    "rss_kb",
]

_MEM_ENABLED = False
_TRACEMALLOC_OWNED = False


def rss_kb() -> int | None:
    """Current resident set size in KiB, or None when unavailable."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # Linux reports KiB; macOS reports bytes.
        return int(usage.ru_maxrss if os.uname().sysname == "Linux"
                   else usage.ru_maxrss // 1024)
    except Exception:
        return None


def enable_memory_sampling(python_heap: bool = True) -> None:
    """Arm per-artifact memory sampling (and optionally tracemalloc).

    When ``python_heap`` is true and ``tracemalloc`` is not already
    running, it is started here and stopped by
    :func:`disable_memory_sampling`.
    """
    global _MEM_ENABLED, _TRACEMALLOC_OWNED
    _MEM_ENABLED = True
    if python_heap and not tracemalloc.is_tracing():
        tracemalloc.start()
        _TRACEMALLOC_OWNED = True


def disable_memory_sampling() -> None:
    global _MEM_ENABLED, _TRACEMALLOC_OWNED
    _MEM_ENABLED = False
    if _TRACEMALLOC_OWNED and tracemalloc.is_tracing():
        tracemalloc.stop()
    _TRACEMALLOC_OWNED = False


def memory_sampling_enabled() -> bool:
    return _MEM_ENABLED


@contextmanager
def memory_probe(span: Span):
    """Attach memory attrs to ``span`` around the ``with`` body.

    A no-op (no reads, no attrs) unless memory sampling is enabled.
    ``span`` may be the tracer's shared null span — ``set`` is a no-op
    there, so sampling composes with tracing being off.
    """
    if not _MEM_ENABLED:
        yield
        return
    before = rss_kb()
    tracing_heap = tracemalloc.is_tracing()
    if tracing_heap:
        tracemalloc.reset_peak()
    try:
        yield
    finally:
        after = rss_kb()
        attrs = {}
        if before is not None:
            attrs["rss_kb_before"] = before
        if after is not None:
            attrs["rss_kb_after"] = after
            if before is not None:
                attrs["rss_kb_delta"] = after - before
        if tracing_heap:
            _, peak = tracemalloc.get_traced_memory()
            attrs["py_heap_peak_kb"] = peak // 1024
        span.set(**attrs)


class StageProfiler:
    """One shared ``cProfile`` profiler spanning every stage dispatch.

    The CLI arms it with ``--profile FILE``; each stage runs inside
    :meth:`stage`, and :meth:`dump` writes the aggregate ``pstats``
    file.  Profiling one stage at a time under a single profiler keeps
    the universe construction and argument parsing out of the numbers.
    """

    def __init__(self):
        self._profile = cProfile.Profile()
        self.stages: list[str] = []

    @contextmanager
    def stage(self, name: str):
        self.stages.append(name)
        self._profile.enable()
        try:
            yield
        finally:
            self._profile.disable()

    def dump(self, path: str | Path) -> None:
        """Write the aggregated profile as a ``pstats`` dump file."""
        self._profile.dump_stats(str(Path(path)))

    def summary(self, limit: int = 15) -> str:
        """Top functions by cumulative time, as text."""
        buf = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buf)
        stats.sort_stats("cumulative").print_stats(limit)
        return buf.getvalue().rstrip()
