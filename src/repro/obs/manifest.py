"""Run manifests: the provenance record of one ``repro`` invocation.

A :class:`RunManifest` captures everything needed to answer "what did
this run compute, on what code, how fast" long after the process is
gone: the git SHA and package version, the interpreter/machine, the
runtime config and universe parameters, per-stage wall times and
counters (a :meth:`PerfRegistry.delta_since` of the run), per-artifact
build seconds and content fingerprints, and a checksum of each stage's
rendered output.  The ledger (:mod:`repro.obs.ledger`) appends these
as JSON lines; ``repro history`` / ``compare`` / ``gate`` read them
back.

Serialization is **canonical**: :meth:`RunManifest.to_json` sorts every
key at every level and uses compact separators, so the same manifest
always produces the same bytes — the property the round-trip tests and
``repro compare`` drift detection rely on.

Fingerprints (:func:`fingerprint`) hash the *content* of an artifact
value — numpy arrays by dtype/shape/bytes, dataclasses by field, dicts
by sorted key — so two runs that computed identical results produce
identical fingerprints even across processes and machines.

Stdlib-only, like the rest of :mod:`repro.obs` (numpy arrays are
handled by duck-typing, never imported).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "checksum_text",
    "environment",
    "fingerprint",
    "git_sha",
    "new_run_id",
    "utc_now_iso",
    "version_string",
]

#: Manifest wire-format version.  Bump on incompatible field changes.
MANIFEST_SCHEMA = "repro-run/1"

_GIT_SHA_UNSET = "\0unset"
_git_sha_cache: str | None = _GIT_SHA_UNSET  # type: ignore[assignment]


def git_sha(root: str | Path | None = None) -> str | None:
    """The repository HEAD SHA, or ``None`` outside a git checkout.

    ``REPRO_GIT_SHA`` overrides (containers and CI images that ship
    without ``.git``).  The subprocess result is cached per process.
    """
    global _git_sha_cache
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    if root is not None:
        return _git_sha_of(Path(root))
    if _git_sha_cache == _GIT_SHA_UNSET:
        _git_sha_cache = _git_sha_of(None)
    return _git_sha_cache


def _git_sha_of(root: Path | None) -> str | None:
    cmd = ["git"]
    if root is not None:
        cmd += ["-C", str(root)]
    cmd += ["rev-parse", "HEAD"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=5, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def version_string() -> str:
    """``repro <version> (<sha>)`` — the ``repro --version`` surface."""
    from .. import __version__
    sha = git_sha()
    return f"repro {__version__} ({sha[:12] if sha else 'no-git'})"


def utc_now_iso() -> str:
    """Current UTC time as an ISO-8601 string (second precision)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def new_run_id() -> str:
    """A fresh 12-hex-digit run identifier."""
    return uuid.uuid4().hex[:12]


def environment() -> dict:
    """The build/host fields every manifest embeds."""
    from .. import __version__
    return {
        "version": __version__,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------

def checksum_text(text: str) -> str:
    """sha256 hex digest of a rendered output string."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint(value) -> str:
    """Deterministic sha256 over the *content* of an artifact value.

    Stable across processes and machines for the types artifacts are
    made of: primitives, strings, numpy arrays (dtype + shape + bytes,
    duck-typed), dataclasses (per field; fields opting out via
    ``metadata={"fingerprint": False}`` are skipped), dicts (sorted by
    key repr), and sequences.  Unknown objects fall back to ``repr``,
    which is
    only stable when the repr is — artifact dataclasses bottom out in
    the stable branches, so this is a corner, not the common path.
    """
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()


def _feed(h, value) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        h.update(f"{type(value).__name__}:{value!r};".encode())
    elif isinstance(value, bytes):
        h.update(b"bytes:")
        h.update(value)
        h.update(b";")
    elif hasattr(value, "tobytes") and hasattr(value, "dtype") \
            and hasattr(value, "shape"):
        h.update(f"ndarray:{value.dtype}:{value.shape};".encode())
        h.update(value.tobytes())
    elif isinstance(value, dict):
        h.update(b"dict{")
        for k in sorted(value, key=repr):
            _feed(h, k)
            _feed(h, value[k])
        h.update(b"}")
    elif isinstance(value, (list, tuple)):
        h.update(f"{type(value).__name__}[".encode())
        for item in value:
            _feed(h, item)
        h.update(b"]")
    elif isinstance(value, (set, frozenset)):
        h.update(b"set[")
        for item in sorted(value, key=repr):
            _feed(h, item)
        h.update(b"]")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(f"dc:{type(value).__name__}(".encode())
        for f in dataclasses.fields(value):
            # Fields marked fingerprint=False hold derived handles
            # (e.g. a networkx graph) whose repr embeds a memory
            # address — unstable across processes, and fully
            # determined by the content-bearing fields anyway.
            if not f.metadata.get("fingerprint", True):
                continue
            h.update(f"{f.name}=".encode())
            _feed(h, getattr(value, f.name))
        h.update(b")")
    else:
        h.update(f"repr:{value!r};".encode())


# ----------------------------------------------------------------------
# The manifest
# ----------------------------------------------------------------------

@dataclass
class RunManifest:
    """One run's provenance record (see the module docstring).

    ``timers`` / ``timer_calls`` / ``counters`` are the run's
    :meth:`PerfRegistry.delta_since` — activity of *this* run, not the
    process lifetime.  ``artifacts`` maps ``name(param=value, …)`` to
    ``{"seconds": …, "sha256": …}``; ``outputs`` maps a stage name to
    the sha256 of its rendered text.
    """

    run_id: str
    kind: str                       # "cli" | "bench"
    command: str                    # stage name, "all", "trace", "bench"
    started: str                    # ISO-8601 UTC
    duration_s: float
    version: str = ""
    git_sha: str | None = None
    python: str = ""
    machine: str = ""
    cpu_count: int = 0
    argv: list = field(default_factory=list)
    config: dict = field(default_factory=dict)
    universe: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    timer_calls: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical (recursively key-sorted) plain-dict form."""
        return _sorted_deep(dataclasses.asdict(self))

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict) -> "RunManifest":
        names = {f.name for f in dataclasses.fields(cls)}
        known = {k: v for k, v in d.items() if k in names}
        # Forward compatibility: unknown top-level keys ride in extra.
        unknown = {k: v for k, v in d.items() if k not in names}
        if unknown:
            known.setdefault("extra", {})
            known["extra"] = dict(known["extra"], **unknown)
        return cls(**known)

    @classmethod
    def from_json(cls, line: str) -> "RunManifest":
        return cls.from_dict(json.loads(line))

    # -- derived views -------------------------------------------------

    def total_seconds(self) -> float:
        """The run's headline wall time: the ``cli.*`` stage timers
        when present (CLI runs), otherwise the sum of all timers
        (bench runs, whose stages do not nest)."""
        cli = [v for k, v in self.timers.items() if k.startswith("cli.")]
        return sum(cli) if cli else sum(self.timers.values())

    def timer_for(self, stage: str) -> float | None:
        """Resolve a stage argument against the timer namespace:
        exact name first, then ``cli.<stage>``, ``artifact.<stage>``."""
        for name in (stage, f"cli.{stage}", f"artifact.{stage}"):
            if name in self.timers:
                return self.timers[name]
        return None


def _sorted_deep(value):
    if isinstance(value, dict):
        return {k: _sorted_deep(value[k])
                for k in sorted(value, key=str)}
    if isinstance(value, list):
        return [_sorted_deep(v) for v in value]
    return value
